(* The sharded router and the FAA-batched operations.

   Three layers of coverage:

   - direct batch-op semantics on the production queue (order,
     partial batches, ticket accounting via [Internal]);
   - router semantics on hardware atomics (conservation, bounded
     mode, rebalancing, snapshot folding);
   - the relaxed-FIFO contract under the deterministic scheduler:
     random interleavings of the simulated router checked against
     [Lincheck.Relaxed_fifo] for shards x batch sweeps, with the
     shards=1/batch=1 corner pinned to the strict-FIFO checker. *)

open Alcotest

module H = Lincheck.History
module Spec = Lincheck.Queue_spec
module Wgl = Lincheck.Wgl.Make (Lincheck.Queue_spec)
module Q = Wfq.Wfqueue
module Sim = Simsched.Sim
module SQ = Sim.Queue
module SR = Sim.Shard_router

(* ------------------------------------------------------------------ *)
(* Batch operations on the production queue                           *)

let test_batch_roundtrip () =
  let q = Q.create () in
  let h = Q.register q in
  Q.enq_batch q h [| 1; 2; 3; 4; 5 |];
  check int "length after batch" 5 (Q.approx_length q);
  let out = Q.deq_batch q h 5 in
  check (array (option int)) "FIFO cell order"
    [| Some 1; Some 2; Some 3; Some 4; Some 5 |]
    out;
  check (option int) "drained" None (Q.dequeue q h)

let test_batch_partial () =
  (* a k-batch against a shorter queue returns the values in order
     and EMPTY holes for the rest *)
  let q = Q.create () in
  let h = Q.register q in
  Q.enq_batch q h [| 10; 20 |];
  let out = Q.deq_batch q h 4 in
  check (array (option int)) "partial batch" [| Some 10; Some 20; None; None |] out

let test_batch_interleaves_with_singles () =
  let q = Q.create () in
  let h = Q.register q in
  Q.enqueue q h 1;
  Q.enq_batch q h [| 2; 3 |];
  Q.enqueue q h 4;
  check (option int) "single sees batch order" (Some 1) (Q.dequeue q h);
  check (array (option int)) "batch sees single order" [| Some 2; Some 3 |] (Q.deq_batch q h 2);
  check (option int) "tail value" (Some 4) (Q.dequeue q h)

let test_batch_empty_noops () =
  (* zero-size batches must not consume FAA tickets *)
  let q = Q.create () in
  let h = Q.register q in
  let t0 = Q.Internal.tail_index q and h0 = Q.Internal.head_index q in
  Q.enq_batch q h [||];
  check (array (option int)) "deq_batch 0" [||] (Q.deq_batch q h 0);
  check (array (option int)) "deq_batch negative" [||] (Q.deq_batch q h (-3));
  check int "tail ticket untouched" t0 (Q.Internal.tail_index q);
  check int "head ticket untouched" h0 (Q.Internal.head_index q)

let test_batch_one_faa_per_batch () =
  (* the amortization claim itself: k cells move T by k with one
     reservation, not k *)
  let q = Q.create () in
  let h = Q.register q in
  let t0 = Q.Internal.tail_index q in
  Q.enq_batch q h (Array.init 64 Fun.id);
  check int "tail moved by exactly k" (t0 + 64) (Q.Internal.tail_index q);
  let h0 = Q.Internal.head_index q in
  let out = Q.deq_batch q h 64 in
  check int "head moved by exactly k" (h0 + 64) (Q.Internal.head_index q);
  check int "all values out" 64
    (Array.fold_left (fun acc -> function Some _ -> acc + 1 | None -> acc) 0 out)

let test_batch_segment_crossing () =
  (* tiny segments force one batch to span several segment
     allocations *)
  let q = Q.create ~segment_shift:1 ~max_garbage:2 () in
  let h = Q.register q in
  let n = 100 in
  Q.enq_batch q h (Array.init n Fun.id);
  let out = Q.deq_batch q h n in
  let got = Array.to_list out |> List.filter_map Fun.id in
  check (list int) "order across segments" (List.init n Fun.id) got

let test_batch_obs_counters () =
  (* the instrumented build records batch sizes; the production build
     compiles the event tier out *)
  let module O = Wfq.Wfqueue_obs in
  let q = O.create () in
  let h = O.register q in
  O.enq_batch q h [| 1; 2; 3 |];
  ignore (O.deq_batch q h 3);
  let s = O.stats q in
  check int "enq batches" 1 s.Obs.Counters.enq_batches;
  check int "enq batch cells" 3 s.Obs.Counters.enq_batch_cells;
  check int "deq batches" 1 s.Obs.Counters.deq_batches;
  check int "deq batch cells" 3 s.Obs.Counters.deq_batch_cells;
  check (float 0.01) "avg enq batch" 3.0 (Obs.Counters.avg_enq_batch s);
  (* production instantiation: event tier off *)
  let q = Q.create () in
  let h = Q.register q in
  Q.enq_batch q h [| 1; 2; 3 |];
  ignore (Q.deq_batch q h 3);
  let s = Q.stats q in
  check int "disabled probe records no batches" 0 s.Obs.Counters.enq_batches;
  check int "path tier still counted" 3 s.Obs.Counters.fast_enqueues

(* ------------------------------------------------------------------ *)
(* Router on hardware atomics                                         *)

module R = Shard.Wf

let test_router_conservation () =
  let t = R.create ~shards:4 ~rebalance_every:5 () in
  let h = R.register t in
  let n = 1000 in
  for v = 1 to n do
    R.enqueue t h v
  done;
  check int "approx_length sums shards" n (R.approx_length t);
  let got = ref [] in
  let rec drain () =
    match R.dequeue t h with
    | Some v ->
      got := v :: !got;
      drain ()
    | None -> ()
  in
  drain ();
  check (list int) "multiset conserved" (List.init n (fun i -> i + 1))
    (List.sort compare !got);
  check (option int) "empty after drain" None (R.dequeue t h);
  R.retire t h

let test_router_batch_conservation () =
  let t = R.create ~shards:3 ~rebalance_every:2 () in
  let h = R.register t in
  let sent = ref [] in
  for b = 0 to 49 do
    let vs = Array.init 4 (fun j -> (b * 4) + j) in
    Array.iter (fun v -> sent := v :: !sent) vs;
    R.enq_batch t h vs
  done;
  let got = ref [] in
  let continue = ref true in
  while !continue do
    let out = R.deq_batch t h 4 in
    let values = Array.to_list out |> List.filter_map Fun.id in
    if values = [] then continue := false else got := values @ !got
  done;
  check (list int) "batch multiset conserved" (List.sort compare !sent)
    (List.sort compare !got);
  R.retire t h

let test_router_per_shard_fifo () =
  (* values routed to one shard come back in enqueue order even when
     dequeues rotate across shards *)
  let t = R.create ~shards:2 ~rebalance_every:1_000_000 () in
  let h = R.register t in
  let shard_of = Hashtbl.create 64 in
  for v = 1 to 200 do
    Hashtbl.replace shard_of v (R.enqueue' t h v)
  done;
  let last_seen = Hashtbl.create 4 in
  let rec drain () =
    match R.dequeue t h with
    | Some v ->
      let s = Hashtbl.find shard_of v in
      (match Hashtbl.find_opt last_seen s with
      | Some prev when prev > v -> failf "shard %d: %d dequeued after %d" s v prev
      | _ -> ());
      Hashtbl.replace last_seen s v;
      drain ()
    | None -> ()
  in
  drain ();
  R.retire t h

let test_router_rebalance () =
  let t = R.create ~shards:4 ~rebalance_every:10 () in
  let h = R.register t in
  for v = 1 to 200 do
    R.enqueue t h v
  done;
  check bool "rebalances happened" true (R.rebalances t > 0);
  (* all four shards saw traffic *)
  Array.iteri
    (fun i snap ->
      check bool
        (Printf.sprintf "shard %d saw enqueues" i)
        true
        (Obs.Counters.total_enqueues snap.Obs.Snapshot.ops > 0))
    (R.shard_snapshots t);
  R.retire t h

let test_router_bounded () =
  let t = R.create ~shards:2 ~capacity:4 ~rebalance_every:1_000_000 () in
  let h = R.register t in
  (* 8 = 2 shards x capacity 4 fit (capacity-forced rebalancing
     spreads them), the 9th must refuse *)
  for v = 1 to 8 do
    check bool (Printf.sprintf "value %d admitted" v) true (R.try_enqueue t h v)
  done;
  check bool "9th refused" false (R.try_enqueue t h 9);
  check bool "blocked counted" true (R.blocked t > 0);
  (match R.enqueue_exn t h 9 with
  | () -> fail "enqueue_exn should raise"
  | exception R.Would_block -> ());
  (* batch admission: no room for 3 anywhere, room after a drain *)
  check bool "batch refused" false (R.try_enq_batch t h [| 10; 11; 12 |]);
  (match R.dequeue t h with Some _ -> () | None -> fail "bounded queue not empty");
  check bool "room after dequeue" true (R.try_enqueue t h 9);
  R.retire t h

let test_router_unbounded_never_blocks () =
  let t = R.create ~shards:2 () in
  let h = R.register t in
  for v = 1 to 100 do
    check bool "unbounded always admits" true (R.try_enqueue t h v)
  done;
  check int "no blocking recorded" 0 (R.blocked t);
  R.retire t h

let test_router_snapshot_fold () =
  let t = R.create ~shards:3 ~rebalance_every:7 () in
  let h = R.register t in
  for v = 1 to 90 do
    R.enqueue t h v
  done;
  let rec drain () = match R.dequeue t h with Some _ -> drain () | None -> () in
  drain ();
  let folded = R.snapshot t in
  let per_shard = R.shard_snapshots t in
  let sum f = Array.fold_left (fun acc s -> acc + f s) 0 per_shard in
  check int "folded enqueues"
    (sum (fun s -> Obs.Counters.total_enqueues s.Obs.Snapshot.ops))
    (Obs.Counters.total_enqueues folded.Obs.Snapshot.ops);
  check int "folded dequeues"
    (sum (fun s -> Obs.Counters.total_dequeues s.Obs.Snapshot.ops))
    (Obs.Counters.total_dequeues folded.Obs.Snapshot.ops);
  check int "folded live segments"
    (sum (fun s -> s.Obs.Snapshot.segments.live))
    folded.Obs.Snapshot.segments.live;
  R.retire t h

let test_registry_instances () =
  (* the Queues registry wires the new shapes into every bench/gate
     path; exercise each through the uniform ops record *)
  [ "wf-shard-2"; "wf-shard-8"; "wf-batch-8" ]
  |> List.iter (fun name ->
         match Harness.Queues.find name with
         | None -> failf "%s missing from registry" name
         | Some f ->
           let inst = f.Harness.Queues.make () in
           let ops = inst.Harness.Queues.register () in
           for v = 1 to 100 do
             ops.Harness.Queues.enqueue v
           done;
           let got = ref [] in
           let rec drain () =
             match ops.Harness.Queues.dequeue () with
             | Some v ->
               got := v :: !got;
               drain ()
             | None -> ()
           in
           drain ();
           check (list int)
             (Printf.sprintf "%s conserves" name)
             (List.init 100 (fun i -> i + 1))
             (List.sort compare !got);
           ops.Harness.Queues.release ();
           (match inst.Harness.Queues.snapshot () with
           | Some snap ->
             check bool
               (Printf.sprintf "%s snapshot counts ops" name)
               true
               (Obs.Counters.total_enqueues snap.Obs.Snapshot.ops >= 100)
           | None -> failf "%s should expose a snapshot" name))

(* ------------------------------------------------------------------ *)
(* The relaxed-FIFO checker itself (synthetic histories)              *)

let ev thread input output inv res = { H.thread; input; output; inv; res }

let test_checker_catches_shard_fifo_violation () =
  (* both values on shard 0, dequeued inverted with disjoint
     intervals: clause 1 must fire whatever d says *)
  let evs =
    [|
      ev 0 (Spec.Enq 1) Spec.Accepted 0 1;
      ev 0 (Spec.Enq 2) Spec.Accepted 2 3;
      ev 1 Spec.Deq (Spec.Got 2) 4 5;
      ev 1 Spec.Deq (Spec.Got 1) 6 7;
    |]
  in
  (match
     Lincheck.Relaxed_fifo.check ~shards:2 ~shard_of:(fun _ -> 0) ~d:100 evs
   with
  | Error (Lincheck.Relaxed_fifo.Shard_violation (0, _)) -> ()
  | Error v ->
    failf "wrong violation: %s" (Format.asprintf "%a" Lincheck.Relaxed_fifo.pp_violation v)
  | Ok () -> fail "inversion not caught");
  (* same history is fine when the values live on different shards
     and d allows one overtake *)
  match
    Lincheck.Relaxed_fifo.check ~shards:2 ~shard_of:(fun v -> v land 1) ~d:1 evs
  with
  | Ok () -> ()
  | Error v -> failf "spurious: %s" (Format.asprintf "%a" Lincheck.Relaxed_fifo.pp_violation v)

let test_checker_overtake_bound () =
  (* value 1 (shard 0) overtaken by 2 and 3 (shard 1): count 2 *)
  let evs =
    [|
      ev 0 (Spec.Enq 1) Spec.Accepted 0 1;
      ev 0 (Spec.Enq 2) Spec.Accepted 2 3;
      ev 0 (Spec.Enq 3) Spec.Accepted 4 5;
      ev 1 Spec.Deq (Spec.Got 2) 6 7;
      ev 1 Spec.Deq (Spec.Got 3) 8 9;
      ev 1 Spec.Deq (Spec.Got 1) 10 11;
    |]
  in
  let shard_of v = if v = 1 then 0 else 1 in
  (match Lincheck.Relaxed_fifo.check ~shards:2 ~shard_of ~d:1 evs with
  | Error (Lincheck.Relaxed_fifo.Overtaken { value = 1; count = 2; bound = 1 }) -> ()
  | Error v -> failf "wrong violation: %s" (Format.asprintf "%a" Lincheck.Relaxed_fifo.pp_violation v)
  | Ok () -> fail "overtake not counted");
  match Lincheck.Relaxed_fifo.check ~shards:2 ~shard_of ~d:2 evs with
  | Ok () -> ()
  | Error v -> failf "d=2 should pass: %s" (Format.asprintf "%a" Lincheck.Relaxed_fifo.pp_violation v)

let test_checker_empty_respects_shards () =
  (* an EMPTY while shard 1 provably held a value refutes the router
     contract even though shard 0 was empty *)
  let evs =
    [|
      ev 0 (Spec.Enq 1) Spec.Accepted 0 1;
      ev 1 Spec.Deq Spec.Empty 2 3;
      ev 1 Spec.Deq (Spec.Got 1) 4 5;
    |]
  in
  match Lincheck.Relaxed_fifo.check ~shards:2 ~shard_of:(fun _ -> 1) ~d:0 evs with
  | Error (Lincheck.Relaxed_fifo.Shard_violation (1, Lincheck.Fast_fifo.Vacuous_empty 1)) -> ()
  | Error v -> failf "wrong violation: %s" (Format.asprintf "%a" Lincheck.Relaxed_fifo.pp_violation v)
  | Ok () -> fail "vacuous EMPTY not caught"

(* ------------------------------------------------------------------ *)
(* Relaxed-FIFO sweeps under the deterministic scheduler              *)

(* Random interleavings of P producer and C consumer fibers over the
   simulated router; the history is checked against the d-bounded
   contract with depth = the largest per-shard routed count (a sound
   backlog bound for any interleaving). *)
let sweep_router ~shards ~batch ~seeds () =
  let producers = 2 and consumers = 2 in
  let per_producer = 12 in
  for seed = 1 to seeds do
    let t =
      SR.create ~shards ~rebalance_every:5 ~patience:1 ~segment_shift:1 ~max_garbage:2 ()
    in
    let handles = Array.init (producers + consumers) (fun _ -> SR.register t) in
    let events = ref [] in
    let shard_of_value = Hashtbl.create 64 in
    let record thread input f =
      let inv = Sim.now () in
      let output = f () in
      let res = Sim.now () in
      events := { H.thread; input; output; inv; res } :: !events
    in
    let producer p () =
      let h = handles.(p) in
      let next = ref 0 in
      while !next < per_producer do
        let k = min batch (per_producer - !next) in
        let vs = Array.init k (fun j -> (p * 1000) + !next + j) in
        next := !next + k;
        if k = 1 then begin
          let v = vs.(0) in
          record p (Spec.Enq v) (fun () ->
              let s = SR.enqueue' t h v in
              Hashtbl.replace shard_of_value v s;
              Spec.Accepted)
        end
        else begin
          (* a batch expands to one event per value sharing the
             call's interval: the batch is not atomic, each value is
             its own operation linearized somewhere inside *)
          let inv = Sim.now () in
          let s = SR.enq_batch' t h vs in
          let res = Sim.now () in
          Array.iter
            (fun v ->
              Hashtbl.replace shard_of_value v s;
              events := { H.thread = p; input = Spec.Enq v; output = Spec.Accepted; inv; res } :: !events)
            vs
        end
      done
    in
    let consumer c () =
      let h = handles.(producers + c) in
      let budget = ref ((producers * per_producer) / consumers) in
      while !budget > 0 do
        if batch = 1 then
          record (producers + c) Spec.Deq (fun () ->
              match SR.dequeue t h with
              | Some v ->
                decr budget;
                Spec.Got v
              | None ->
                decr budget;
                Spec.Empty)
        else begin
          let inv = Sim.now () in
          let out = SR.deq_batch t h batch in
          let res = Sim.now () in
          let got = Array.to_list out |> List.filter_map Fun.id in
          if got = [] then begin
            decr budget;
            events :=
              { H.thread = producers + c; input = Spec.Deq; output = Spec.Empty; inv; res }
              :: !events
          end
          else
            List.iter
              (fun v ->
                decr budget;
                events :=
                  { H.thread = producers + c; input = Spec.Deq; output = Spec.Got v; inv; res }
                  :: !events)
              got
        end
      done;
      (* drain what the budgeted loop left behind so [complete]
         conservation holds *)
      ()
    in
    let fibers =
      Array.init (producers + consumers) (fun i ->
          if i < producers then producer i else consumer (i - producers))
    in
    let stats = Sim.run ~seed:(Int64.of_int seed) fibers in
    if stats.Sim.max_steps_hit then failf "seed %d: hit step bound" seed;
    (* post-run drain (outside the scheduler): anything left in the
       router *)
    let h = handles.(0) in
    let rec drain () =
      match SR.dequeue t h with
      | Some v ->
        let tnow = Sim.now () in
        events :=
          { H.thread = 0; input = Spec.Deq; output = Spec.Got v; inv = tnow + 1; res = tnow + 2 }
          :: !events;
        drain ()
      | None -> ()
    in
    drain ();
    let evs = Array.of_list (List.rev !events) in
    Array.sort (fun a b -> compare a.H.inv b.H.inv) evs;
    (* depth bound: the largest number of values any one shard
       received over the whole run *)
    let counts = Array.make shards 0 in
    Hashtbl.iter (fun _ s -> counts.(s) <- counts.(s) + 1) shard_of_value;
    let depth = Array.fold_left max 1 counts in
    let d =
      if shards = 1 then 0 else (shards - 1) * (depth + ((consumers + 1) * max 1 batch))
    in
    let shard_of v =
      match Hashtbl.find_opt shard_of_value v with Some s -> s | None -> 0
    in
    match Lincheck.Relaxed_fifo.check ~complete:true ~shards ~shard_of ~d evs with
    | Ok () -> ()
    | Error viol ->
      failf "shards=%d batch=%d seed %d: %s" shards batch seed
        (Format.asprintf "%a" Lincheck.Relaxed_fifo.pp_violation viol)
  done

let test_sweep_matrix () =
  (* the acceptance matrix: shards x batch *)
  List.iter
    (fun shards -> List.iter (fun batch -> sweep_router ~shards ~batch ~seeds:150 ()) [ 1; 4 ])
    [ 1; 2; 4 ]

let test_strict_reduction () =
  (* shards=1, batch=1: the relaxed checker with d=0 must agree with
     the strict-FIFO checker on the same histories, and the histories
     must additionally be WGL-linearizable (batch=1 single-queue runs
     are plain queue histories) *)
  for seed = 1 to 200 do
    let t = SR.create ~shards:1 ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let handles = Array.init 3 (fun _ -> SR.register t) in
    let events = ref [] in
    let record thread input f =
      let inv = Sim.now () in
      let output = f () in
      let res = Sim.now () in
      events := { H.thread; input; output; inv; res } :: !events
    in
    let fiber i () =
      let h = handles.(i) in
      let rng = Primitives.Splitmix64.create (Int64.of_int ((seed * 31) + i)) in
      for n = 0 to 2 do
        if Primitives.Splitmix64.bool rng then
          record i (Spec.Enq ((i * 100) + n)) (fun () ->
              SR.enqueue t h ((i * 100) + n);
              Spec.Accepted)
        else
          record i Spec.Deq (fun () ->
              match SR.dequeue t h with Some v -> Spec.Got v | None -> Spec.Empty)
      done
    in
    let stats = Sim.run ~seed:(Int64.of_int seed) [| fiber 0; fiber 1; fiber 2 |] in
    if stats.Sim.max_steps_hit then failf "seed %d: hit step bound" seed;
    let evs = Array.of_list (List.rev !events) in
    Array.sort (fun a b -> compare a.H.inv b.H.inv) evs;
    (match Lincheck.Relaxed_fifo.check ~shards:1 ~shard_of:(fun _ -> 0) ~d:0 evs with
    | Ok () -> ()
    | Error viol ->
      failf "seed %d: strict reduction failed: %s" seed
        (Format.asprintf "%a" Lincheck.Relaxed_fifo.pp_violation viol));
    (match Lincheck.Fast_fifo.check evs with
    | Ok () -> ()
    | Error viol ->
      failf "seed %d: fast_fifo disagrees: %s" seed
        (Format.asprintf "%a" Lincheck.Fast_fifo.pp_violation viol));
    match Wgl.check evs with
    | Wgl.Linearizable _ -> ()
    | Wgl.Not_linearizable -> failf "seed %d: not linearizable" seed
    | Wgl.Too_large -> fail "history too large"
  done

(* Batch ops on a single simulated queue, checked as full
   linearizability: the expansion of each batch into per-value events
   sharing the interval must admit a legal sequential witness. *)
let test_batch_linearizable_sweep () =
  for seed = 1 to 400 do
    let q = SQ.create ~patience:0 ~segment_shift:1 ~max_garbage:2 () in
    let handles = Array.init 2 (fun _ -> SQ.register q) in
    let events = ref [] in
    let fiber i () =
      let h = handles.(i) in
      let rng = Primitives.Splitmix64.create (Int64.of_int ((seed * 77) + i)) in
      for n = 0 to 1 do
        let k = 1 + Primitives.Splitmix64.next_int rng 3 in
        if Primitives.Splitmix64.bool rng then begin
          let vs = Array.init k (fun j -> (i * 100) + (n * 10) + j) in
          let inv = Sim.now () in
          SQ.enq_batch q h vs;
          let res = Sim.now () in
          Array.iter
            (fun v ->
              events :=
                { H.thread = i; input = Spec.Enq v; output = Spec.Accepted; inv; res }
                :: !events)
            vs
        end
        else begin
          let inv = Sim.now () in
          let out = SQ.deq_batch q h k in
          let res = Sim.now () in
          Array.iter
            (fun slot ->
              let output = match slot with Some v -> Spec.Got v | None -> Spec.Empty in
              events := { H.thread = i; input = Spec.Deq; output; inv; res } :: !events)
            out
        end
      done
    in
    let stats = Sim.run ~seed:(Int64.of_int seed) [| fiber 0; fiber 1 |] in
    if stats.Sim.max_steps_hit then failf "seed %d: hit step bound" seed;
    let evs = Array.of_list (List.rev !events) in
    Array.sort (fun a b -> compare a.H.inv b.H.inv) evs;
    match Wgl.check evs with
    | Wgl.Linearizable _ -> ()
    | Wgl.Not_linearizable -> failf "seed %d: batch history not linearizable" seed
    | Wgl.Too_large -> failf "seed %d: history too large for WGL" seed
  done

(* ------------------------------------------------------------------ *)
(* Regression (PR 9): enqueue-side kills vs the missing-value bound.

   A bounded router refuses a batch with {e no} queue footprint
   ([try_enq_batch] = false / [Would_block]).  When that same producer
   is later killed inside the [Enq_batch_after_faa] window — batch
   tickets drawn, no cell filled yet — only that one in-flight batch
   may strand.  The conservation audit therefore gives enqueue-side
   kills {e zero} missing-value allowance: every batch whose enqueue
   returned must still be fully dequeued, and a rejected-then-killed
   producer must not be double-counted (the rejection left nothing
   behind; the kill strands at most [batch] uncommitted values).  The
   [repro shard --bounded] audit encodes exactly this split
   ([strand_kills = kills - enq_side_kills]); this test pins it under
   the deterministic scheduler. *)

let test_bounded_enq_kill_accounting () =
  let batch = 3 in
  let per_producer = 12 in
  let total_kills = ref 0 in
  let total_rejections = ref 0 in
  for seed = 1 to 200 do
    Inject.reset_stats ();
    let plan =
      Inject.Plan.make ~lethal:true ~arm_window:1
        ~points:[ Inject.Enq_batch_after_faa ]
        ~seed:(Int64.of_int ((seed * 7919) + 17))
        ()
    in
    Inject.with_controller
      (fun p ->
        if Sim.current_fiber () = 0 then Inject.Plan.decide plan p else Inject.Continue)
      (fun () ->
        (* capacity 6 per shard against 24 values keeps real rejection
           pressure on both producers while the consumer drains *)
        let t =
          SR.create ~shards:2 ~capacity:6 ~rebalance_every:5 ~patience:1
            ~segment_shift:1 ~max_garbage:2 ()
        in
        let hv = SR.register t in
        let hp = SR.register t in
        let hc = SR.register t in
        let committed = ref [] in
        let got = ref [] in
        let producers_done = ref 0 in
        let produce h base () =
          let next = ref 0 in
          (try
             while !next < per_producer do
               let vs = Array.init batch (fun j -> base + !next + j) in
               if SR.try_enq_batch t h vs then begin
                 Array.iter (fun v -> committed := v :: !committed) vs;
                 next := !next + batch
               end
               else begin
                 incr total_rejections;
                 Sim.yield ()
               end
             done
           with Inject.Killed _ -> ());
          incr producers_done
        in
        let consumer () =
          let idle = ref 0 in
          while !producers_done < 2 || !idle < 3 do
            let before = List.length !got in
            Array.iter
              (function Some v -> got := v :: !got | None -> ())
              (SR.deq_batch t hc batch);
            if List.length !got = before then incr idle else idle := 0
          done
        in
        let stats =
          Sim.run ~seed:(Int64.of_int seed) [| produce hv 100; produce hp 1000; consumer |]
        in
        if stats.Sim.max_steps_hit then failf "seed %d: hit step bound" seed;
        total_kills := !total_kills + (Inject.stats Inject.Enq_batch_after_faa).Inject.kills;
        let rec drain () =
          match SR.dequeue t hc with
          | Some v ->
            got := v :: !got;
            drain ()
          | None -> ()
        in
        drain ();
        let all = List.sort compare !got in
        let rec dups = function
          | a :: (b :: _ as tl) -> if a = b then Some a else dups tl
          | _ -> None
        in
        (match dups all with
        | Some v -> failf "seed %d: value %d dequeued twice" seed v
        | None -> ());
        List.iter
          (fun v ->
            if not (List.mem v all) then
              failf
                "seed %d: committed value %d missing — an enqueue-side kill must strand \
                 only its own in-flight batch"
                seed v)
          !committed)
  done;
  if !total_kills = 0 then
    fail "no Enq_batch_after_faa kill fired across 200 seeds — storm is dead code";
  if !total_rejections = 0 then
    fail "no bounded rejection fired across 200 seeds — capacity pressure is dead code"

let () =
  run "shard"
    [
      ( "batch-ops",
        [
          test_case "roundtrip order" `Quick test_batch_roundtrip;
          test_case "partial batch" `Quick test_batch_partial;
          test_case "interleaves with singles" `Quick test_batch_interleaves_with_singles;
          test_case "zero-size no-ops" `Quick test_batch_empty_noops;
          test_case "one FAA per batch" `Quick test_batch_one_faa_per_batch;
          test_case "segment crossing" `Quick test_batch_segment_crossing;
          test_case "obs counters" `Quick test_batch_obs_counters;
        ] );
      ( "router",
        [
          test_case "conservation" `Quick test_router_conservation;
          test_case "batch conservation" `Quick test_router_batch_conservation;
          test_case "per-shard FIFO" `Quick test_router_per_shard_fifo;
          test_case "rebalancing" `Quick test_router_rebalance;
          test_case "bounded backpressure" `Quick test_router_bounded;
          test_case "unbounded never blocks" `Quick test_router_unbounded_never_blocks;
          test_case "snapshot folding" `Quick test_router_snapshot_fold;
          test_case "registry instances" `Quick test_registry_instances;
        ] );
      ( "checker",
        [
          test_case "catches shard FIFO violation" `Quick test_checker_catches_shard_fifo_violation;
          test_case "overtake bound" `Quick test_checker_overtake_bound;
          test_case "EMPTY respects shards" `Quick test_checker_empty_respects_shards;
        ] );
      ( "simsched",
        [
          test_case "relaxed sweep matrix" `Slow test_sweep_matrix;
          test_case "strict reduction at shards=1" `Slow test_strict_reduction;
          test_case "batch linearizability" `Slow test_batch_linearizable_sweep;
          test_case "bounded enq-kill accounting" `Slow test_bounded_enq_kill_accounting;
        ] );
    ]
