(* Tests for the effects-based task scheduler (lib/sched).

   Three layers, mirroring how the subsystem is built:
   - the lock-free core (promises + Chase–Lev deque) model-checked on
     the simsched shim: exhaustive preemption-bounded exploration and
     ≥500-seed random sweeps of the steal-vs-pop and resolve-vs-await
     races, plus seeded kill storms at the new injection points;
   - the runtime on real domains (Sched.Scheduler): fan-out/fan-in,
     micropools, worker death, shutdown stranding;
   - the storm build (Sched.Scheduler_inject): seeded kill plans over
     the queue and scheduler windows, asserting zero stranded
     promises. *)

let check = Alcotest.check

module Sim = Simsched.Sim
module SC = Sim.Sched_core
module Deque = SC.Deque
module Promise = SC.Promise

(* ------------------------------------------------------------------ *)
(* Deque: sequential semantics                                        *)

let test_deque_sequential () =
  let d = Deque.create ~capacity:8 () in
  check Alcotest.int "capacity" 8 (Deque.capacity d);
  for i = 1 to 8 do
    check Alcotest.bool "push fits" true (Deque.push d i)
  done;
  check Alcotest.bool "push overflows at capacity" false (Deque.push d 9);
  check Alcotest.int "length" 8 (Deque.length d);
  (* owner pops LIFO *)
  check Alcotest.(option int) "pop lifo" (Some 8) (Deque.pop d);
  (* thief steals FIFO *)
  check Alcotest.(option int) "steal fifo" (Some 1) (Deque.steal d);
  check Alcotest.(option int) "steal fifo 2" (Some 2) (Deque.steal d);
  check Alcotest.(option int) "pop lifo 2" (Some 7) (Deque.pop d);
  (* drain the rest from both ends *)
  check Alcotest.(option int) "steal 3" (Some 3) (Deque.steal d);
  check Alcotest.(option int) "pop 6" (Some 6) (Deque.pop d);
  check Alcotest.(option int) "pop 5" (Some 5) (Deque.pop d);
  check Alcotest.(option int) "pop 4 (last)" (Some 4) (Deque.pop d);
  check Alcotest.(option int) "empty pop" None (Deque.pop d);
  check Alcotest.(option int) "empty steal" None (Deque.steal d);
  (* indices keep working after wraparound *)
  for round = 1 to 5 do
    for i = 1 to 6 do
      ignore (Deque.push d ((round * 10) + i) : bool)
    done;
    for i = 1 to 3 do
      check Alcotest.(option int) "wrap steal" (Some ((round * 10) + i)) (Deque.steal d)
    done;
    for i = 6 downto 4 do
      check Alcotest.(option int) "wrap pop" (Some ((round * 10) + i)) (Deque.pop d)
    done
  done;
  check Alcotest.bool "rejects non-power-of-two" true
    (try
       ignore (Deque.create ~capacity:6 ());
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Deque: steal-vs-pop races under the simulated scheduler            *)

(* Shared scenario: an owner pushes [n_items] and pops some, thieves
   sweep concurrently; afterwards the test drains sequentially and
   checks every pushed value was taken exactly once — the Chase–Lev
   conservation invariant (the last-element CAS race and the
   stale-read ABA window both break exactly this if wrong). *)
type deque_state = { d : int Deque.t; taken : int list ref }

let take st v = st.taken := v :: !(st.taken)

let deque_fibers st ~n_items ~n_pops ~n_thieves ~attempts =
  let owner () =
    for i = 1 to n_items do
      (* capacity 16 >= n_items: pushes never overflow here *)
      ignore (Deque.push st.d i : bool)
    done;
    for _ = 1 to n_pops do
      match Deque.pop st.d with Some v -> take st v | None -> ()
    done
  in
  let thief () =
    for _ = 1 to attempts do
      match Deque.steal st.d with Some v -> take st v | None -> ()
    done
  in
  Array.append [| owner |] (Array.init n_thieves (fun _ -> thief))

let deque_check st ~n_items ~ident =
  (* post-run: drain what is left (no concurrency, plain pops) *)
  let rec drain () =
    match Deque.pop st.d with
    | Some v ->
      take st v;
      drain ()
    | None -> ()
  in
  drain ();
  let got = List.sort compare !(st.taken) in
  let want = List.init n_items (fun i -> i + 1) in
  if got <> want then
    Alcotest.failf "%s: conservation broken: took [%s], want [%s]" ident
      (String.concat ";" (List.map string_of_int got))
      (String.concat ";" (List.map string_of_int want))

let test_deque_explore_last_element () =
  (* the smallest witness of the owner-vs-thief top CAS race: one
     element, one pop, one steal — exhaustive *)
  let state = ref None in
  let r =
    Sim.explore ~max_schedules:60_000 ~preemptions:3
      ~make_fibers:(fun () ->
        let st = { d = Deque.create ~capacity:16 (); taken = ref [] } in
        state := Some st;
        deque_fibers st ~n_items:1 ~n_pops:1 ~n_thieves:1 ~attempts:2)
      ~check:(fun () -> deque_check (Option.get !state) ~n_items:1 ~ident:"last-element")
      ()
  in
  if r.Sim.truncated_runs > 0 then Alcotest.fail "truncated schedules";
  check Alcotest.bool "non-trivial space" true (r.Sim.schedules > 50)

let test_deque_explore_steal_vs_pop () =
  (* two elements: the pop-side decrement and the steal CAS interleave
     across a non-empty ring — exhaustive with 2 forced preemptions *)
  let state = ref None in
  let r =
    Sim.explore ~max_schedules:80_000 ~preemptions:2
      ~make_fibers:(fun () ->
        let st = { d = Deque.create ~capacity:16 (); taken = ref [] } in
        state := Some st;
        deque_fibers st ~n_items:2 ~n_pops:2 ~n_thieves:1 ~attempts:2)
      ~check:(fun () -> deque_check (Option.get !state) ~n_items:2 ~ident:"steal-vs-pop")
      ()
  in
  if r.Sim.truncated_runs > 0 then Alcotest.fail "truncated schedules";
  check Alcotest.bool "non-trivial space" true (r.Sim.schedules > 100)

let test_deque_seed_sweep () =
  (* deeper interleavings than the preemption bound reaches: 600 seeds
     of owner + 2 thieves over 8 items *)
  for seed = 1 to 600 do
    let st = { d = Deque.create ~capacity:16 (); taken = ref [] } in
    let stats =
      Sim.run ~seed:(Int64.of_int seed)
        (deque_fibers st ~n_items:8 ~n_pops:5 ~n_thieves:2 ~attempts:6)
    in
    if stats.Sim.max_steps_hit then Alcotest.failf "seed %d: step limit" seed;
    deque_check st ~n_items:8 ~ident:(Printf.sprintf "seed %d" seed)
  done

(* ------------------------------------------------------------------ *)
(* Promise: resolve-exactly-once and resolve-vs-await                 *)

type promise_state = {
  p : (int, int) Promise.t;
  wins : int ref;
  fired : int ref; (* total waiter invocations *)
  saw : (int, int) result option ref; (* first value a waiter saw *)
}

let make_promise_state () = { p = Promise.create (); wins = ref 0; fired = ref 0; saw = ref None }

let waiter st r =
  incr st.fired;
  match !(st.saw) with
  | None -> st.saw := Some r
  | Some prev ->
    if prev <> r then Alcotest.failf "waiters saw different results (split resolution)"

let promise_check st ~n_waiters ~ident =
  if !(st.wins) <> 1 then Alcotest.failf "%s: %d resolvers won (want exactly 1)" ident !(st.wins);
  if !(st.fired) <> n_waiters then
    Alcotest.failf "%s: %d waiter firings for %d waiters" ident !(st.fired) n_waiters;
  match (Promise.poll st.p, !(st.saw)) with
  | None, _ -> Alcotest.failf "%s: promise unresolved after a winner" ident
  | Some r, Some seen when r <> seen ->
    Alcotest.failf "%s: waiter saw a value the promise does not hold" ident
  | Some _, _ -> ()

let test_promise_explore_resolve_race () =
  (* 2 resolvers racing 1 awaiter, exhaustive: exactly one wins; the
     waiter fires exactly once whichever side of the registration CAS
     the resolution lands on *)
  let state = ref None in
  let r =
    Sim.explore ~max_schedules:60_000 ~preemptions:3
      ~make_fibers:(fun () ->
        let st = make_promise_state () in
        state := Some st;
        let resolver v () = if Promise.try_resolve st.p (Ok v) then incr st.wins in
        let awaiter () = ignore (Promise.add_waiter st.p (waiter st) : bool) in
        [| resolver 1; resolver 2; awaiter |])
      ~check:(fun () -> promise_check (Option.get !state) ~n_waiters:1 ~ident:"explore")
      ()
  in
  if r.Sim.truncated_runs > 0 then Alcotest.fail "truncated schedules";
  check Alcotest.bool "non-trivial space" true (r.Sim.schedules > 100)

let test_promise_seed_sweep () =
  (* 600 seeds: 3 resolvers (one rejecting) vs 3 awaiters *)
  for seed = 1 to 600 do
    let st = make_promise_state () in
    let resolver v () = if Promise.try_resolve st.p v then incr st.wins in
    let awaiter () = ignore (Promise.add_waiter st.p (waiter st) : bool) in
    let fibers =
      [| resolver (Ok 1); resolver (Ok 2); resolver (Error 3); awaiter; awaiter; awaiter |]
    in
    let stats = Sim.run ~seed:(Int64.of_int seed) fibers in
    if stats.Sim.max_steps_hit then Alcotest.failf "seed %d: step limit" seed;
    promise_check st ~n_waiters:3 ~ident:(Printf.sprintf "seed %d" seed)
  done

(* ------------------------------------------------------------------ *)
(* Kill storms at the new injection points (simulated)                *)

let test_kill_steal_window () =
  (* a thief dies holding the claim window ([Sched_steal_pending],
     pre-CAS): it must have taken nothing, and everyone else must
     still take everything exactly once.  400 seeds, victim rotates. *)
  for seed = 1 to 400 do
    let victim = 1 + (seed mod 2) in
    (* fiber index of a thief *)
    let st = { d = Deque.create ~capacity:16 (); taken = ref [] } in
    let dead = ref false in
    let fibers = deque_fibers st ~n_items:8 ~n_pops:4 ~n_thieves:2 ~attempts:6 in
    let shielded =
      Array.mapi
        (fun i f () ->
          if i = victim then (try f () with Inject.Killed _ -> dead := true) else f ())
        fibers
    in
    Inject.with_controller
      (fun p ->
        if p = Inject.Sched_steal_pending && Sim.current_fiber () = victim then Inject.Die
        else Inject.Continue)
      (fun () ->
        let stats = Sim.run ~seed:(Int64.of_int seed) shielded in
        if stats.Sim.max_steps_hit then Alcotest.failf "seed %d: step limit" seed);
    deque_check st ~n_items:8 ~ident:(Printf.sprintf "steal-kill seed %d" seed);
    (* the victim only survives if the schedule never let it reach a
       non-empty steal; either way conservation held above *)
    ignore !dead
  done

let test_kill_resolve_window () =
  (* a resolver dies in the commit window ([Sched_resolve_pending],
     pre-CAS): the promise must still be pending, and the recovery
     resolve — retrying through further kills, exactly what
     [Runtime.resolve_hard] does — must land exactly once.  500
     seeds. *)
  for seed = 1 to 500 do
    let st = make_promise_state () in
    let plan =
      Inject.Plan.make ~lethal:true ~points:[ Inject.Sched_resolve_pending ]
        ~seed:(Int64.of_int seed) ()
    in
    let was_killed = ref false in
    let resolver () =
      let rec resolve_hard r =
        match Promise.try_resolve st.p r with
        | won -> won
        | exception Inject.Killed _ -> resolve_hard r
      in
      match Promise.try_resolve st.p (Ok 42) with
      | won -> if won then incr st.wins
      | exception Inject.Killed _ ->
        (* the runtime's death handler: resolve with the death marker *)
        was_killed := true;
        if resolve_hard (Error 13) then incr st.wins
    in
    let awaiter () = ignore (Promise.add_waiter st.p (waiter st) : bool) in
    Inject.with_controller (Inject.Plan.decide plan) (fun () ->
        let stats = Sim.run ~seed:(Int64.of_int seed) [| resolver; awaiter; awaiter |] in
        if stats.Sim.max_steps_hit then Alcotest.failf "seed %d: step limit" seed);
    promise_check st ~n_waiters:2 ~ident:(Printf.sprintf "resolve-kill seed %d" seed);
    (if !was_killed then
       match Promise.poll st.p with
       | Some (Error 13) -> ()
       | _ -> Alcotest.failf "seed %d: killed resolver's recovery value lost" seed)
  done

let test_park_storms () =
  (* parks (not kills) across all three scheduler windows: a parked
     fiber is descheduled mid-window; conservation and exactly-once
     must be schedule-independent.  300 seeds over the deque
     scenario. *)
  Inject.set_park (fun n -> for _ = 1 to min n 16 do Sim.yield () done);
  Fun.protect ~finally:(fun () -> Inject.set_park (fun n -> for _ = 1 to n do Domain.cpu_relax () done))
  @@ fun () ->
  for seed = 1 to 300 do
    let st = { d = Deque.create ~capacity:16 (); taken = ref [] } in
    let plan =
      Inject.Plan.make ~park:8
        ~points:
          [ Inject.Sched_steal_pending; Inject.Sched_park_pending; Inject.Sched_resolve_pending ]
        ~seed:(Int64.of_int seed) ()
    in
    Inject.with_controller (Inject.Plan.decide plan) (fun () ->
        let stats =
          Sim.run ~seed:(Int64.of_int seed)
            (deque_fibers st ~n_items:8 ~n_pops:4 ~n_thieves:2 ~attempts:6)
        in
        if stats.Sim.max_steps_hit then Alcotest.failf "seed %d: step limit" seed);
    deque_check st ~n_items:8 ~ident:(Printf.sprintf "park seed %d" seed)
  done

(* ------------------------------------------------------------------ *)
(* Runtime on real domains                                            *)

module S = Sched.Scheduler

let with_sched ?(workers = 3) ?injector_cap f =
  let t = S.create ~workers ?injector_cap () in
  Fun.protect ~finally:(fun () -> S.shutdown t) (fun () -> f t)

let poll_until ?(timeout = 10.0) ~what p =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match S.Promise.poll p with
    | Some r -> r
    | None ->
      if Unix.gettimeofday () > deadline then Alcotest.failf "%s: promise stranded" what
      else begin
        Domain.cpu_relax ();
        go ()
      end
  in
  go ()

let test_async_await () =
  with_sched (fun t ->
      let p = S.async t (fun () -> 21 * 2) in
      check Alcotest.bool "resolves" true (S.Promise.result p = Ok 42);
      let q = S.async t (fun () -> failwith "boom") in
      match S.Promise.result q with
      | Error (Failure m) -> check Alcotest.string "contained" "boom" m
      | _ -> Alcotest.fail "expected Failure")

let test_fan_out_fan_in () =
  (* each root spawns children from inside its fiber and awaits them:
     the await suspends the fiber and the worker moves on — with 3
     workers and 40 roots this deadlocks in under a second unless
     suspension really releases the worker *)
  with_sched ~workers:3 (fun t ->
      let roots =
        List.init 40 (fun r ->
            S.async t (fun () ->
                let kids = List.init 4 (fun k -> S.async t (fun () -> (r * 10) + k)) in
                List.fold_left (fun acc kid -> acc + S.Promise.await kid) 0 kids))
      in
      let total =
        List.fold_left
          (fun acc p ->
            match S.Promise.result p with
            | Ok v -> acc + v
            | Error e -> Alcotest.failf "root failed: %s" (Printexc.to_string e))
          0 roots
      in
      (* sum over r<40, k<4 of 10r+k *)
      check Alcotest.int "fan-in total" ((10 * 4 * (40 * 39 / 2)) + (40 * 6)) total)

let test_spawn_recursion () =
  (* a spawn tree deeper than the worker count: fib via promises *)
  with_sched ~workers:2 (fun t ->
      let rec fib n = if n < 2 then n else S.Promise.await (S.async t (fun () -> fib (n - 1))) + fib (n - 2) in
      let p = S.async t (fun () -> fib 12) in
      check Alcotest.bool "fib 12" true (S.Promise.result p = Ok 144))

let test_yield () =
  with_sched ~workers:1 (fun t ->
      let log = Atomic.make 0 in
      let p =
        S.async t (fun () ->
            let before = Atomic.get log in
            S.yield ();
            Atomic.get log - before)
      in
      let q = S.async t (fun () -> Atomic.incr log) in
      ignore (S.Promise.result q);
      (* with one worker, p's yield let q run first iff q was queued
         behind it; either way both complete and yield returned *)
      match S.Promise.result p with
      | Ok d -> check Alcotest.bool "yield progressed" true (d >= 0)
      | Error e -> Alcotest.failf "yield task failed: %s" (Printexc.to_string e))

let test_micropools () =
  with_sched ~workers:2 (fun t ->
      S.add_pool t ~name:"io" ~workers:1;
      check Alcotest.(list string) "pool names" [ "default"; "io" ] (S.pool_names t);
      (* route by name from outside, and spawn-affinity from inside *)
      let io_tasks =
        List.init 20 (fun i -> S.async ~pool:"io" t (fun () -> i))
      in
      let cross =
        S.async t (fun () ->
            (* a default-pool fiber awaiting an io-pool promise *)
            let p = S.async ~pool:"io" t (fun () -> 7) in
            S.Promise.await p + 1)
      in
      List.iter (fun p -> ignore (S.Promise.result p)) io_tasks;
      check Alcotest.bool "cross-pool await" true (S.Promise.result cross = Ok 8);
      let obs = S.obs t in
      check Alcotest.int "two pools observed" 2 (List.length obs);
      let io = List.find (fun o -> o.S.name = "io") obs in
      check Alcotest.bool "io pool ran its tasks" true (io.S.tasks_completed >= 21);
      check Alcotest.int "io pool sized as asked" 1 io.S.workers;
      (* duplicate names are rejected *)
      check Alcotest.bool "duplicate rejected" true
        (try
           S.add_pool t ~name:"io" ~workers:1;
           false
         with Invalid_argument _ -> true))

let test_external_promise () =
  with_sched ~workers:2 (fun t ->
      let gate : int S.Promise.t = S.Promise.create () in
      let waiters =
        List.init 8 (fun i -> S.async t (fun () -> S.Promise.await gate + i))
      in
      (* nothing resolves until the app does *)
      Unix.sleepf 0.02;
      List.iter
        (fun p -> check Alcotest.bool "parked" true (S.Promise.poll p = None))
        waiters;
      check Alcotest.bool "first resolve wins" true (S.Promise.resolve gate 100);
      check Alcotest.bool "second resolve loses" false (S.Promise.resolve gate 999);
      List.iteri
        (fun i p ->
          check Alcotest.bool "woken with the winner" true (S.Promise.result p = Ok (100 + i)))
        waiters)

let test_shutdown_rejects_and_completes_backlog () =
  let t = S.create ~workers:1 () in
  let counter = Atomic.make 0 in
  let ps = List.init 200 (fun _ -> S.async t (fun () -> Atomic.incr counter)) in
  S.shutdown t;
  check Alcotest.int "backlog completed" 200 (Atomic.get counter);
  List.iter (fun p -> check Alcotest.bool "resolved" true (S.Promise.poll p <> None)) ps;
  try
    ignore (S.async t (fun () -> 2));
    Alcotest.fail "async after shutdown accepted"
  with Invalid_argument _ -> ()

let test_worker_death_recovery () =
  with_sched ~workers:2 (fun t ->
      let p = S.async t (fun () -> raise S.Abort_worker) in
      check Alcotest.bool "death resolves the promise" true
        (poll_until ~what:"abort task" p = Error S.Abort_worker);
      (* the survivor keeps the pool serving *)
      let ps = List.init 50 (fun i -> S.async t (fun () -> i)) in
      List.iteri
        (fun i p -> check Alcotest.bool "survivor serves" true (S.Promise.result p = Ok i))
        ps;
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait_for_counters () =
        let o = List.hd (S.obs t) in
        if o.S.worker_deaths = 1 && o.S.live_workers = 1 then ()
        else if Unix.gettimeofday () > deadline then
          Alcotest.failf "death not observed: deaths=%d live=%d" o.S.worker_deaths
            o.S.live_workers
        else begin
          Domain.cpu_relax ();
          wait_for_counters ()
        end
      in
      wait_for_counters ())

let test_no_strand_after_all_workers_die () =
  (* the old pool's orphan test, through the scheduler: kill the only
     worker while a started fiber sits suspended on an external
     promise, queue more roots nobody will run, then resolve the
     external promise and shut down — every promise must resolve *)
  let t = S.create ~workers:1 () in
  let started = Atomic.make false in
  let gate : int S.Promise.t = S.Promise.create () in
  let suspended =
    S.async t (fun () ->
        Atomic.set started true;
        S.Promise.await gate + 1)
  in
  while not (Atomic.get started) do
    Domain.cpu_relax ()
  done;
  (* the fiber is now parked on [gate]; kill the only worker *)
  let killer = S.async t (fun () -> raise S.Abort_worker) in
  check Alcotest.bool "killer resolved" true (poll_until ~what:"killer" killer = Error S.Abort_worker);
  (* orphans: accepted, but no worker will ever claim them *)
  let orphans = List.init 5 (fun i -> S.async t (fun () -> i)) in
  (* resolving the gate wakes the suspended fiber's continuation into a
     worker-less injector; the shutdown sweep must claim it (and the
     orphans) rather than strand anything *)
  check Alcotest.bool "gate resolves" true (S.Promise.resolve gate 41);
  S.shutdown t;
  List.iteri
    (fun i p ->
      match S.Promise.poll p with
      | Some (Error S.Shutdown) -> ()
      | Some (Ok _) -> () (* legal: the sweep ran it inline before workers died? no — but Ok only if a worker got it first *)
      | Some (Error e) -> Alcotest.failf "orphan %d: unexpected %s" i (Printexc.to_string e)
      | None -> Alcotest.failf "orphan %d stranded" i)
    orphans;
  (match S.Promise.poll suspended with
  | Some (Ok v) ->
    (* the continuation ran (inline or swept-after-resolve) *)
    check Alcotest.int "gate value flowed through" 42 v
  | Some (Error S.Shutdown) -> () (* or the sweep aborted it: unwound, not stranded *)
  | Some (Error e) -> Alcotest.failf "suspended fiber: unexpected %s" (Printexc.to_string e)
  | None -> Alcotest.fail "suspended fiber stranded");
  let o = List.hd (S.obs t) in
  check Alcotest.bool "sweep aborted something" true (o.S.aborted_promises >= 1)

(* ------------------------------------------------------------------ *)
(* Storm build: seeded kill plans over queue + scheduler windows      *)

module SI = Sched.Scheduler_inject

let test_storm_kill_fan_out () =
  (* the acceptance drill, sized for CI: fan-out/fan-in through the
     storm build while a seeded plan kills victims at every queue and
     scheduler window.  Whatever dies, no promise may be stranded:
     every root resolves Ok, or with the death/shutdown marker. *)
  let n_roots = 40 and n_kids = 4 in
  for seed = 1 to 12 do
    let t = SI.create ~workers:4 () in
    let plan = Inject.Plan.make ~lethal:true ~seed:(Int64.of_int (seed * 7919)) () in
    (* victims are the worker domains; the driver (this domain) must
       survive to audit, exactly like the repro storm drivers *)
    let driver = Domain.self () in
    let decide p = if Domain.self () = driver then Inject.Continue else Inject.Plan.decide plan p in
    Inject.with_controller decide (fun () ->
        let roots =
          List.init n_roots (fun r ->
              SI.async t (fun () ->
                  let kids =
                    List.init n_kids (fun k -> SI.async t (fun () -> (r * n_kids) + k))
                  in
                  List.fold_left
                    (fun acc kid ->
                      match SI.Promise.result kid with Ok v -> acc + v | Error _ -> acc)
                    0 kids))
        in
        (* give the storm a moment, then shut down: the sweep must
           resolve whatever the (possibly dead) workers left behind *)
        let deadline = Unix.gettimeofday () +. 5.0 in
        let rec settle () =
          if List.for_all (fun p -> SI.Promise.poll p <> None) roots then ()
          else if Unix.gettimeofday () > deadline then ()
          else begin
            Unix.sleepf 0.001;
            settle ()
          end
        in
        settle ();
        SI.shutdown t;
        List.iteri
          (fun i p ->
            match SI.Promise.poll p with
            | None ->
              Alcotest.failf "seed %d: root %d stranded (%s)" seed i (Inject.Plan.describe plan)
            | Some (Ok _) | Some (Error SI.Shutdown) | Some (Error SI.Abort_worker)
            | Some (Error (Inject.Killed _)) ->
              ()
            | Some (Error e) ->
              Alcotest.failf "seed %d: root %d unexpected %s" seed i (Printexc.to_string e))
          roots)
  done

let test_storm_park_fan_out () =
  (* same shape, parks instead of kills: victims stall in the windows
     but nothing dies, so every root must complete Ok with the exact
     fan-in sum *)
  Inject.set_park (fun n -> Unix.sleepf (float_of_int n *. 1e-6));
  Fun.protect ~finally:(fun () -> Inject.set_park (fun n -> for _ = 1 to n do Domain.cpu_relax () done))
  @@ fun () ->
  let n_roots = 30 and n_kids = 4 in
  for seed = 1 to 8 do
    let t = SI.create ~workers:4 () in
    let plan = Inject.Plan.make ~park:500 ~seed:(Int64.of_int (seed * 104729)) () in
    Inject.with_controller (Inject.Plan.decide plan) (fun () ->
        let roots =
          List.init n_roots (fun r ->
              SI.async t (fun () ->
                  let kids =
                    List.init n_kids (fun k -> SI.async t (fun () -> (r * n_kids) + k))
                  in
                  List.fold_left (fun acc kid -> acc + SI.Promise.await kid) 0 kids))
        in
        let expect r = List.init n_kids (fun k -> (r * n_kids) + k) |> List.fold_left ( + ) 0 in
        List.iteri
          (fun r p ->
            match SI.Promise.result p with
            | Ok v -> check Alcotest.int (Printf.sprintf "seed %d root %d" seed r) (expect r) v
            | Error e -> Alcotest.failf "seed %d root %d: %s" seed r (Printexc.to_string e))
          roots;
        SI.shutdown t)
  done

let () =
  Alcotest.run "sched"
    [
      ( "deque",
        [
          Alcotest.test_case "sequential semantics" `Quick test_deque_sequential;
          Alcotest.test_case "last element: exhaustive" `Quick test_deque_explore_last_element;
          Alcotest.test_case "steal vs pop: exhaustive" `Quick test_deque_explore_steal_vs_pop;
          Alcotest.test_case "steal vs pop: 600-seed sweep" `Quick test_deque_seed_sweep;
        ] );
      ( "promise",
        [
          Alcotest.test_case "resolve race: exhaustive" `Quick test_promise_explore_resolve_race;
          Alcotest.test_case "resolve vs await: 600-seed sweep" `Quick test_promise_seed_sweep;
        ] );
      ( "kill storms",
        [
          Alcotest.test_case "steal window kills" `Quick test_kill_steal_window;
          Alcotest.test_case "resolve window kills + recovery" `Quick test_kill_resolve_window;
          Alcotest.test_case "park storms at sched points" `Quick test_park_storms;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "async / await" `Quick test_async_await;
          Alcotest.test_case "fan-out fan-in" `Quick test_fan_out_fan_in;
          Alcotest.test_case "spawn recursion (fib)" `Quick test_spawn_recursion;
          Alcotest.test_case "yield" `Quick test_yield;
          Alcotest.test_case "micropools" `Quick test_micropools;
          Alcotest.test_case "external promises" `Quick test_external_promise;
          Alcotest.test_case "shutdown: rejects + completes backlog" `Quick
            test_shutdown_rejects_and_completes_backlog;
          Alcotest.test_case "worker death recovery" `Quick test_worker_death_recovery;
          Alcotest.test_case "no strand after all workers die" `Quick
            test_no_strand_after_all_workers_die;
        ] );
      ( "storms",
        [
          Alcotest.test_case "seeded kill storm (fan-out)" `Quick test_storm_kill_fan_out;
          Alcotest.test_case "seeded park storm (fan-out)" `Quick test_storm_park_fan_out;
        ] );
    ]
