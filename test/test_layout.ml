(* The cache-conscious layout machinery: the padding primitive, the
   strided counter arrays, and the laws tying the three atomic
   implementations (hardware, CAS-emulated FAA, simulated) to one
   observable behaviour.  Layout is invisible to correct code by
   design, so these tests pin down (1) that padding really changes the
   physical representation, and (2) that it changes nothing else. *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Padding mechanics                                                  *)

let test_padded_block_size () =
  (* the whole point: a padded atomic's block spans a full padding
     unit, so two of them can never share one *)
  let a = Primitives.Padding.make_padded_atomic 42 in
  let words = Obj.size (Obj.repr a) in
  check Alcotest.bool
    (Printf.sprintf "padded atomic spans a padding unit (%d words)" words)
    true
    (words >= Primitives.Padding.cache_line_words - 1);
  let plain = Atomic.make 42 in
  check Alcotest.int "unpadded atomic is one field" 1 (Obj.size (Obj.repr plain))

let test_padded_atomic_behaves () =
  let a = Primitives.Padding.make_padded_atomic 0 in
  check Alcotest.int "initial" 0 (Atomic.get a);
  Atomic.set a 5;
  check Alcotest.int "set/get" 5 (Atomic.get a);
  check Alcotest.int "faa returns old" 5 (Atomic.fetch_and_add a 3);
  check Alcotest.int "faa added" 8 (Atomic.get a);
  check Alcotest.bool "cas hit" true (Atomic.compare_and_set a 8 9);
  check Alcotest.bool "cas miss" false (Atomic.compare_and_set a 8 10);
  check Alcotest.int "cas result" 9 (Atomic.get a)

let test_copy_as_padded_identity_cases () =
  (* immediates and no-scan blocks must come back physically unchanged *)
  let s = "hello" in
  check Alcotest.bool "string is identity" true (Primitives.Padding.copy_as_padded s == s);
  let big = Array.make Primitives.Padding.cache_line_words 0 in
  check Alcotest.bool "already-large block is identity" true
    (Primitives.Padding.copy_as_padded big == big)

let test_copy_as_padded_preserves_fields () =
  let r = Primitives.Padding.copy_as_padded (ref 7) in
  check Alcotest.int "field preserved" 7 !r;
  r := 8;
  check Alcotest.int "mutation works" 8 !r

(* ------------------------------------------------------------------ *)
(* Strided counters                                                   *)

let test_counters_basics () =
  let module C = Primitives.Atomic_prims.Real.Counters in
  let c = C.make ~len:4 ~init:3 in
  check Alcotest.int "length" 4 (C.length c);
  for i = 0 to 3 do
    check Alcotest.int (Printf.sprintf "init %d" i) 3 (C.get c i)
  done;
  C.set c 2 10;
  check Alcotest.int "set hits only its slot" 3 (C.get c 1);
  check Alcotest.int "set" 10 (C.get c 2);
  check Alcotest.int "faa returns old" 10 (C.fetch_and_add c 2 5);
  check Alcotest.int "faa added" 15 (C.get c 2);
  check Alcotest.bool "cas hit" true (C.compare_and_set c 0 3 4);
  check Alcotest.bool "cas miss" false (C.compare_and_set c 0 3 5);
  check Alcotest.int "cas result" 4 (C.get c 0);
  let empty = C.make ~len:0 ~init:0 in
  check Alcotest.int "empty length" 0 (C.length empty)

(* Each of [n] domains hammers only its own counter; if the counters
   were not independent (an indexing bug aliasing two slots), some
   final count would be wrong.  This is the concurrent analogue of the
   aliasing the false-sharing bench measures the *performance* of. *)
let counter_independence (module C : Primitives.Atomic_prims.COUNTERS) n =
  let per_domain = 50_000 in
  let c = C.make ~len:n ~init:0 in
  let workers =
    List.init n (fun i ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              ignore (C.fetch_and_add c i 1)
            done))
  in
  List.iter Domain.join workers;
  for i = 0 to n - 1 do
    check Alcotest.int (Printf.sprintf "counter %d exact" i) per_domain (C.get c i)
  done

let test_counters_independent_real () =
  counter_independence (module Primitives.Atomic_prims.Real.Counters) 4

let test_counters_independent_emulated () =
  counter_independence (module Primitives.Atomic_prims.Emulated_faa.Counters) 4

(* ------------------------------------------------------------------ *)
(* Laws: the three implementations of Atomic_prims.S agree            *)

(* One deterministic single-threaded program over the full signature;
   its observable trace must be identical on hardware atomics, the
   CAS-emulated-FAA variant, and the simulated atomics (outside [run],
   where yield is a no-op).  Divergence would mean the model checker
   exercises a different algorithm than the one that ships. *)
module Laws (A : Primitives.Atomic_prims.S) = struct
  let trace () =
    let out = ref [] in
    let emit v = out := v :: !out in
    let a = A.make 1 in
    emit (A.get a);
    A.set a 5;
    emit (A.get a);
    emit (A.fetch_and_add a 3);
    emit (A.get a);
    emit (if A.compare_and_set a 8 11 then 1 else 0);
    emit (if A.compare_and_set a 8 12 then 1 else 0);
    emit (A.get a);
    (* contended constructor: same semantics *)
    let b = A.make_contended 100 in
    emit (A.fetch_and_add b 1);
    emit (A.get b);
    emit (if A.compare_and_set b 101 200 then 1 else 0);
    emit (A.get b);
    (* counters *)
    let c = A.Counters.make ~len:3 ~init:7 in
    emit (A.Counters.length c);
    emit (A.Counters.get c 0);
    emit (A.Counters.fetch_and_add c 1 2);
    emit (A.Counters.get c 1);
    emit (A.Counters.get c 2);
    A.Counters.set c 2 (-1);
    emit (A.Counters.get c 2);
    emit (if A.Counters.compare_and_set c 0 7 70 then 1 else 0);
    emit (if A.Counters.compare_and_set c 0 7 71 then 1 else 0);
    emit (A.Counters.get c 0);
    A.cpu_relax ();
    List.rev !out
end

let test_implementations_agree () =
  let module R = Laws (Primitives.Atomic_prims.Real) in
  let module E = Laws (Primitives.Atomic_prims.Emulated_faa) in
  let module S = Laws (Simsched.Sim.Atomic_shim) in
  let r = R.trace () in
  check Alcotest.(list int) "emulated-FAA = real" r (E.trace ());
  check Alcotest.(list int) "simulated = real" r (S.trace ())

let () =
  Alcotest.run "layout"
    [
      ( "padding",
        [
          Alcotest.test_case "padded block size" `Quick test_padded_block_size;
          Alcotest.test_case "padded atomic behaves" `Quick test_padded_atomic_behaves;
          Alcotest.test_case "identity cases" `Quick test_copy_as_padded_identity_cases;
          Alcotest.test_case "fields preserved" `Quick test_copy_as_padded_preserves_fields;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counters_basics;
          Alcotest.test_case "independent under domains (real)" `Quick
            test_counters_independent_real;
          Alcotest.test_case "independent under domains (emulated faa)" `Quick
            test_counters_independent_emulated;
        ] );
      ("laws", [ Alcotest.test_case "implementations agree" `Quick test_implementations_agree ]);
    ]
