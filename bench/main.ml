(* Benchmark entry point: regenerates every table and figure of the
   paper (quick methodology) and measures single-threaded per-op cost
   with Bechamel.

     dune exec bench/main.exe

   Full-strength runs (the paper's 10-invocation methodology, 10^7
   ops) are available through bin/repro.exe; this executable is sized
   to complete in minutes on the single-core evaluation host.

   One Bechamel test per queue covers the "single core performance"
   discussion of §5.2; the Figure 2 / Table 1 / Table 2 / ablation
   sections print the same rows the paper reports. *)

open Bechamel
open Bechamel.Toolkit

(* ------------------------------------------------------------------ *)
(* Bechamel: single-threaded enqueue-dequeue pair cost per queue      *)

let pair_test (f : Harness.Queues.factory) =
  let instance = f.Harness.Queues.make () in
  let ops = instance.Harness.Queues.register () in
  let counter = ref 0 in
  Test.make ~name:f.Harness.Queues.name
    (Staged.stage (fun () ->
         incr counter;
         ops.Harness.Queues.enqueue !counter;
         ignore (ops.Harness.Queues.dequeue ())))

let obstruction_free_test =
  let q = Wfq.Obstruction_free.create () in
  let counter = ref 0 in
  Test.make ~name:"obstruction-free"
    (Staged.stage (fun () ->
         incr counter;
         Wfq.Obstruction_free.enqueue q !counter;
         ignore (Wfq.Obstruction_free.dequeue q)))

let run_bechamel () =
  let tests =
    Test.make_grouped ~name:"pair"
      (obstruction_free_test :: List.map pair_test Harness.Queues.all)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let instances = [ Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Harness.Report.create ~header:[ "queue"; "ns/pair (OLS)" ] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  (* Sort by name only: the OLS value is an abstract Bechamel record,
     and polymorphic compare on it is meaningless (and on degenerate
     runs the estimate can be NaN, which [compare] orders
     arbitrarily). *)
  let by_name (a, _) (b, _) = String.compare a b in
  List.iter
    (fun (name, ols) ->
      (* A degenerate run (too few samples, clock hiccup) can yield a
         NaN, infinite, or negative slope; flag it instead of printing
         a nonsense per-op cost. *)
      let est =
        match Analyze.OLS.estimates ols with
        | Some (x :: _) when Float.is_finite x && x >= 0.0 -> Printf.sprintf "%.1f" x
        | Some (x :: _) -> Printf.sprintf "n/a (degenerate: %h)" x
        | Some [] | None -> "n/a"
      in
      Harness.Report.add_row table [ name; est ])
    (List.sort by_name rows);
  Harness.Report.print
    ~title:"Single-core per-operation cost (Bechamel OLS, one enqueue+dequeue pair)" table

(* ------------------------------------------------------------------ *)

let () =
  print_endline "=== Reproduction benchmarks: Yang & Mellor-Crummey, PPoPP'16 ===";
  print_endline "(quick methodology; see bin/repro.exe for the full 10x20 runs)";

  (* Table 1 *)
  ignore (Harness.Experiments.table1 ());

  (* §5.2 single-core discussion *)
  run_bechamel ();

  (* Figure 2, both benchmarks *)
  let threads = [ 1; 2; 4; 8 ] in
  let total_ops = 100_000 in
  ignore (Harness.Experiments.figure2 ~quick:true ~threads ~total_ops Harness.Workload.Pairs);
  ignore
    (Harness.Experiments.figure2 ~quick:true ~threads ~total_ops Harness.Workload.Fifty_fifty);

  (* Figure 2, Power7 panel analogue: FAA emulated with a CAS retry
     loop (the architecture row of Table 1 with "native FAA: no") *)
  let power7_queues =
    List.filter_map Harness.Queues.find [ "wf-10"; "wf-llsc"; "msqueue"; "ccqueue" ]
  in
  ignore
    (Harness.Experiments.figure2 ~quick:true ~threads ~total_ops ~queues:power7_queues
       ~title_note:", Power7 analogue: CAS-emulated FAA" Harness.Workload.Pairs);

  (* Table 2 *)
  ignore (Harness.Experiments.table2 ~quick:true ~threads:[ 4; 8; 16; 32 ] ~total_ops ());

  (* Latency tails: the predictability claim *)
  ignore (Harness.Latency.experiment ~threads:8 ~ops_per_thread:10_000 ());

  (* Ablations *)
  ignore (Harness.Experiments.ablation_patience ~quick:true ~threads:4 ~total_ops ());
  ignore (Harness.Experiments.ablation_segment_size ~quick:true ~threads:4 ~total_ops ());
  ignore (Harness.Experiments.ablation_max_garbage ~quick:true ~threads:4 ~total_ops ());
  ignore (Harness.Experiments.ablation_reclamation ~quick:true ~threads:4 ~total_ops ());
  print_endline "\nDone.  EXPERIMENTS.md records paper-vs-measured for each artifact."
