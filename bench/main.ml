(* Benchmark entry point: regenerates every table and figure of the
   paper (quick methodology) and measures single-threaded per-op cost
   with Bechamel.

     dune exec bench/main.exe -- [--smoke] [--json [PATH]]

   --smoke       CI-sized run: Bechamel + Figure 2 (pairs) + the
                 false-sharing microbenchmark only, with smaller op
                 counts; skips Table 2, latency, the Power7 panel, the
                 fifty-fifty benchmark and the ablations.
   --json [PATH] after running, write the machine-readable results
                 (Bechamel ns/pair, Figure 2 pairs points, false
                 sharing, wait-freedom telemetry, host info) to PATH
                 (default BENCH_pr3.json).  The committed BENCH_pr3.json
                 is the baseline bin/bench_gate.exe checks CI runs
                 against.

   Full-strength runs (the paper's 10-invocation methodology, 10^7
   ops) are available through bin/repro.exe; this executable is sized
   to complete in minutes on the single-core evaluation host.

   One Bechamel test per queue covers the "single core performance"
   discussion of §5.2; the Figure 2 / Table 1 / Table 2 / ablation
   sections print the same rows the paper reports. *)

open Bechamel
open Bechamel.Toolkit

(* ------------------------------------------------------------------ *)
(* CLI                                                                *)

let usage () =
  prerr_endline "usage: bench/main.exe [--smoke] [--json [PATH]]";
  exit 2

type cli = { smoke : bool; json_path : string option }

let parse_cli () =
  let smoke = ref false in
  let json_path = ref None in
  let rec go = function
    | [] -> ()
    | "--smoke" :: rest -> smoke := true; go rest
    | "--json" :: rest -> (
      match rest with
      | path :: rest' when String.length path > 0 && path.[0] <> '-' ->
        json_path := Some path;
        go rest'
      | _ ->
        json_path := Some "BENCH_pr3.json";
        go rest)
    | arg :: _ ->
      Printf.eprintf "bench/main.exe: unknown argument %S\n" arg;
      usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  { smoke = !smoke; json_path = !json_path }

(* ------------------------------------------------------------------ *)
(* Bechamel: single-threaded enqueue-dequeue pair cost per queue      *)

(* The handle is a Bechamel-managed resource: [allocate] registers it
   and [free] releases it, so repeated runs do not leak dead handles
   into the queue's helping ring (a leaked handle is scanned by every
   subsequent slow-path operation, so the leak would skew exactly the
   thing this benchmark measures). *)
let pair_test (f : Harness.Queues.factory) =
  let instance = f.Harness.Queues.make () in
  Test.make_with_resource ~name:f.Harness.Queues.name Test.uniq
    ~allocate:(fun () -> (instance.Harness.Queues.register (), ref 0))
    ~free:(fun ((ops : Harness.Queues.ops), _) -> ops.Harness.Queues.release ())
    (Staged.stage (fun ((ops : Harness.Queues.ops), counter) ->
         incr counter;
         ops.Harness.Queues.enqueue !counter;
         ignore (ops.Harness.Queues.dequeue ())))

let obstruction_free_test =
  let q = Wfq.Obstruction_free.create () in
  let counter = ref 0 in
  Test.make ~name:"obstruction-free"
    (Staged.stage (fun () ->
         incr counter;
         Wfq.Obstruction_free.enqueue q !counter;
         ignore (Wfq.Obstruction_free.dequeue q)))

(* Run the per-queue pair benchmarks; print the table and return the
   OLS estimates (None when a degenerate run yields no usable slope)
   for --json. *)
let run_bechamel ~smoke =
  let tests =
    Test.make_grouped ~name:"pair"
      (obstruction_free_test :: List.map pair_test Harness.Queues.all)
  in
  let quota = if smoke then Time.second 0.25 else Time.second 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~stabilize:true () in
  let instances = [ Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table = Harness.Report.create ~header:[ "queue"; "ns/pair (OLS)" ] in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  (* Sort by name only: the OLS value is an abstract Bechamel record,
     and polymorphic compare on it is meaningless (and on degenerate
     runs the estimate can be NaN, which [compare] orders
     arbitrarily). *)
  let by_name (a, _) (b, _) = String.compare a b in
  let estimates =
    List.map
      (fun (name, ols) ->
        (* A degenerate run (too few samples, clock hiccup) can yield a
           NaN, infinite, or negative slope; flag it instead of printing
           a nonsense per-op cost. *)
        let est =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) when Float.is_finite x && x >= 0.0 -> Some x
          | Some _ | None -> None
        in
        let cell =
          match (est, Analyze.OLS.estimates ols) with
          | Some x, _ -> Printf.sprintf "%.1f" x
          | None, Some (x :: _) -> Printf.sprintf "n/a (degenerate: %h)" x
          | None, (Some [] | None) -> "n/a"
        in
        Harness.Report.add_row table [ name; cell ];
        (name, est))
      (List.sort by_name rows)
  in
  Harness.Report.print
    ~title:"Single-core per-operation cost (Bechamel OLS, one enqueue+dequeue pair)" table;
  estimates

(* ------------------------------------------------------------------ *)
(* JSON assembly                                                      *)

let json_of_host () =
  let h = Harness.Platform.host () in
  Harness.Json.Obj
    [
      ("processor", Harness.Json.String h.Harness.Platform.processor);
      ("clock_ghz", Harness.Json.Float h.Harness.Platform.clock_ghz);
      ("processors", Harness.Json.Int h.Harness.Platform.processors);
      ("cores", Harness.Json.Int h.Harness.Platform.cores);
      ("hw_threads", Harness.Json.Int h.Harness.Platform.hw_threads);
      ("native_faa", Harness.Json.Bool h.Harness.Platform.native_faa);
    ]

let json_of_bechamel estimates =
  Harness.Json.List
    (List.map
       (fun (name, est) ->
         Harness.Json.Obj
           [
             ("queue", Harness.Json.String name);
             ( "ns_per_pair",
               match est with Some x -> Harness.Json.Float x | None -> Harness.Json.Null );
           ])
       estimates)

let json_of_fig2 (points : Harness.Experiments.fig2_point list) =
  Harness.Json.List
    (List.map
       (fun (p : Harness.Experiments.fig2_point) ->
         let iv = p.Harness.Experiments.interval in
         Harness.Json.Obj
           [
             ("queue", Harness.Json.String p.Harness.Experiments.queue);
             ("threads", Harness.Json.Int p.Harness.Experiments.threads);
             ("mops_mean", Harness.Json.Float iv.Stats.Student_t.mean);
             ("mops_lower", Harness.Json.Float iv.Stats.Student_t.lower);
             ("mops_upper", Harness.Json.Float iv.Stats.Student_t.upper);
           ])
       points)

let json_of_false_sharing (results : Harness.False_sharing.result list) =
  Harness.Json.List
    (List.map
       (fun (r : Harness.False_sharing.result) ->
         Harness.Json.Obj
           [
             ("domains", Harness.Json.Int r.Harness.False_sharing.domains);
             ("ops_per_domain", Harness.Json.Int r.Harness.False_sharing.ops_per_domain);
             ("padded_mops", Harness.Json.Float r.Harness.False_sharing.padded_mops);
             ("unpadded_mops", Harness.Json.Float r.Harness.False_sharing.unpadded_mops);
             ("speedup", Harness.Json.Float r.Harness.False_sharing.speedup);
           ])
       results)

(* ------------------------------------------------------------------ *)

let () =
  let cli = parse_cli () in
  print_endline "=== Reproduction benchmarks: Yang & Mellor-Crummey, PPoPP'16 ===";
  print_endline
    (if cli.smoke then "(smoke methodology; see bin/repro.exe for the full 10x20 runs)"
     else "(quick methodology; see bin/repro.exe for the full 10x20 runs)");

  (* Table 1 *)
  ignore (Harness.Experiments.table1 ());

  (* §5.2 single-core discussion *)
  let bechamel_estimates = run_bechamel ~smoke:cli.smoke in

  (* Figure 2, both benchmarks (smoke: pairs only) *)
  let threads = [ 1; 2; 4; 8 ] in
  let total_ops = if cli.smoke then 20_000 else 100_000 in
  let _, fig2_pairs =
    Harness.Experiments.figure2_data ~quick:true ~threads ~total_ops Harness.Workload.Pairs
  in
  if not cli.smoke then begin
    ignore
      (Harness.Experiments.figure2 ~quick:true ~threads ~total_ops Harness.Workload.Fifty_fifty);

    (* Figure 2, Power7 panel analogue: FAA emulated with a CAS retry
       loop (the architecture row of Table 1 with "native FAA: no") *)
    let power7_queues =
      List.filter_map Harness.Queues.find [ "wf-10"; "wf-llsc"; "msqueue"; "ccqueue" ]
    in
    ignore
      (Harness.Experiments.figure2 ~quick:true ~threads ~total_ops ~queues:power7_queues
         ~title_note:", Power7 analogue: CAS-emulated FAA" Harness.Workload.Pairs);

    (* Table 2 *)
    ignore (Harness.Experiments.table2 ~quick:true ~threads:[ 4; 8; 16; 32 ] ~total_ops ());

    (* Latency tails: the predictability claim *)
    ignore (Harness.Latency.experiment ~threads:8 ~ops_per_thread:10_000 ())
  end;

  (* False sharing: the layout microbenchmark behind the padded
     counters (DESIGN.md memory-layout section) *)
  let ops_per_domain = if cli.smoke then 500_000 else 2_000_000 in
  let _, fs_results = Harness.False_sharing.experiment ~ops_per_domain () in

  (* Allocations per operation: deterministic single-threaded
     steady-state rows (the regression gate pins every row's words/op;
     see Harness.Alloc_bench for why these, not the noisy concurrent
     telemetry numbers, feed the gate) *)
  print_endline "\n== Allocations per operation (steady state, minor words) ==";
  let alloc_rows =
    Harness.Alloc_bench.default_rows
      ~warmup_pairs:(if cli.smoke then 60_000 else 120_000)
      ~pairs:(if cli.smoke then 20_000 else 50_000)
      ()
  in
  Format.printf "%a@?" Harness.Alloc_bench.pp_rows alloc_rows;

  (* Role-split throughput for the specialized topology variants: each
     against the general queue under the identical producer/consumer
     split (the pairs tables above cannot host them — every pairs
     thread holds both roles, which the specialized contracts reject) *)
  print_endline "\n== Topology-split throughput (role-split domains) ==";
  let topology_rows = Harness.Topology_bench.default_rows ~quick:cli.smoke () in
  Format.printf "%a@?" Harness.Topology_bench.pp_rows topology_rows;

  (* Task-scheduler throughput: fan-out/fan-in over the work-stealing
     deques against the flat all-through-the-injector control, on the
     production build (probes and injection compiled out) *)
  print_endline "\n== Task scheduler (fan-out/fan-in vs flat submission) ==";
  let sched_rows = Harness.Sched_bench.default_rows ~quick:cli.smoke () in
  Format.printf "%a@?" Harness.Sched_bench.pp_rows sched_rows;

  (* Wait-freedom telemetry: the instrumented build's fast/slow-path
     breakdown across patience values (the regression gate reads the
     patience-10 row's slow-path rate from the JSON) *)
  print_endline "\n== Wait-freedom telemetry (instrumented build, 4 threads) ==";
  let telemetry_rows =
    Harness.Telemetry.stats_table ~threads:4
      ~total_ops:(if cli.smoke then 100_000 else 400_000)
      ()
  in
  Format.printf "%a@?" Harness.Telemetry.pp_table telemetry_rows;

  if not cli.smoke then begin
    (* Ablations *)
    ignore (Harness.Experiments.ablation_patience ~quick:true ~threads:4 ~total_ops ());
    ignore (Harness.Experiments.ablation_segment_size ~quick:true ~threads:4 ~total_ops ());
    ignore (Harness.Experiments.ablation_max_garbage ~quick:true ~threads:4 ~total_ops ());
    ignore (Harness.Experiments.ablation_reclamation ~quick:true ~threads:4 ~total_ops ())
  end;

  (match cli.json_path with
  | None -> ()
  | Some path ->
    let doc =
      Harness.Json.Obj
        [
          ("generated_by", Harness.Json.String "bench/main.exe");
          ("mode", Harness.Json.String (if cli.smoke then "smoke" else "quick"));
          ("host", json_of_host ());
          ("bechamel_pair", json_of_bechamel bechamel_estimates);
          ("figure2_pairs", json_of_fig2 fig2_pairs);
          ("false_sharing", json_of_false_sharing fs_results);
          ("alloc_per_op", Harness.Alloc_bench.rows_to_json alloc_rows);
          ("topology_mops", Harness.Topology_bench.rows_to_json topology_rows);
          ("sched_tasks", Harness.Sched_bench.rows_to_json sched_rows);
          ("telemetry", Harness.Telemetry.table_to_json telemetry_rows);
        ]
    in
    Harness.Json.save doc ~path;
    Printf.printf "\nWrote %s\n" path);
  print_endline "\nDone.  EXPERIMENTS.md records paper-vs-measured for each artifact."
